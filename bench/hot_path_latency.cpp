// SNN hot-path latency: event-driven forward vs the dense kernel baseline,
// batch-parallel training across thread counts, and prefetched (double
// buffered) batch assembly vs blocking decode — with the bit-identity
// contracts of all three knobs enforced as self-checks.
//
// Row modes:
//   forward        — RecurrentLifLayer::forward at a given input density with
//                    the dense cube already in hand: wall_ms is the
//                    event-driven path (SparseForward::kAuto), ref_ms the
//                    dense baseline (kNever), speedup the ratio.  `identical`
//                    asserts bitwise-equal output cubes AND equal
//                    SpikeOpStats (the sparse path derives synops from the
//                    event list; the dense path count_nonzero-rescans).  The
//                    dense matmul already skips zero activations, so the
//                    in-hand win is bounded by the eliminated scans — this
//                    mode carries no speedup gate, only the identity one.
//   forward_aer    — the from-storage comparison the hot path was built for:
//                    replay samples live as AER, so the legacy pipeline must
//                    decode every sample to a dense raster and fill the batch cube
//                    before the dense kernel can run, while the event path
//                    goes AER → events_from_aer → forward_events with no
//                    dense input cube ever built.  Both sides are timed
//                    end-to-end from the stored AER; this is the mode the
//                    >= 2x acceptance gate applies to.
//   train_threads  — train_supervised at threads=4 vs threads=1 on clones of
//                    one network: `identical` asserts the final weights match
//                    byte for byte (fixed reduction orders), speedup is the
//                    threads=1 / threads=4 wall ratio.
//   train_prefetch — train_supervised over a quantized replay stream with
//                    prefetch=1 vs prefetch=0: stall_ms is the time the train
//                    loop blocked on batch assembly with the background
//                    decoder, blocking_ms the same cost paid synchronously
//                    (prefetch=0), stall_frac their ratio.  `identical`
//                    asserts the final weights match byte for byte.
//
// Self-checks: every `identical` column is enforced unconditionally (exit 1
// on mismatch).  With strict=1 (the default; the smoke lane passes strict=0
// because CI machines are noisy) the perf envelope is enforced too:
//   * best forward_aer speedup among rows with density <= 0.10 must be >= 2.0
//   * train_prefetch stall_frac must be < 0.20
// These are the acceptance gates replayed offline by tools/check_bench.py
// over the checked-in BENCH_hot_path.json.
//
// This bench is synthetic (no pre-training scenario): it isolates the layer
// and trainer hot paths, so it runs in seconds and is deterministic per
// seed.  Knobs (key=value or R4NCL_<KEY>): channels=700 n_out=200
// timesteps=40 batch=16 entries=160 reps=5 strict=1 threads=N verbose=1.
// Writes hot_path_latency.csv/.json (checked in at the repo root as
// BENCH_hot_path.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "compress/aer.hpp"
#include "core/latent_buffer.hpp"
#include "core/replay_stream.hpp"
#include "data/spike_data.hpp"
#include "snn/layer.hpp"
#include "snn/network.hpp"
#include "snn/trainer.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

using namespace r4ncl;

namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double density,
                                std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(density) ? 1 : 0;
  return r;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.values().size() * sizeof(float)) == 0;
}

bool same_stats(const snn::SpikeOpStats& a, const snn::SpikeOpStats& b) {
  return a.synops == b.synops && a.neuron_updates == b.neuron_updates &&
         a.spikes == b.spikes && a.timestep_slots == b.timestep_slots &&
         a.backward_synops == b.backward_synops &&
         a.decompress_bits == b.decompress_bits;
}

/// Every learned parameter of `net`, flattened — byte-compared to prove the
/// threads/prefetch knobs change nothing but wall-clock.
std::vector<float> all_weights(const snn::SnnNetwork& net) {
  std::vector<float> w;
  for (std::size_t i = 0; i < net.num_hidden(); ++i) {
    const auto ff = net.hidden(i).w_ff().values();
    const auto rec = net.hidden(i).w_rec().values();
    w.insert(w.end(), ff.begin(), ff.end());
    w.insert(w.end(), rec.begin(), rec.end());
  }
  const auto ro = net.readout().w().values();
  w.insert(w.end(), ro.begin(), ro.end());
  return w;
}

bool same_weights(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(
      cfg, {"batch", "channels", "entries", "n_out", "reps", "strict", "timesteps"});
  const core::ScopedMetrics metrics(cfg);
  init_log_level_from_env();
  init_threads_from_env();
  if (const long long threads = cfg.get_int("threads", 0); threads > 0) {
    set_num_threads(static_cast<int>(threads));
  }
  const std::size_t C = static_cast<std::size_t>(cfg.get_int("channels", 700));
  const std::size_t n_out = static_cast<std::size_t>(cfg.get_int("n_out", 200));
  const std::size_t T = static_cast<std::size_t>(cfg.get_int("timesteps", 40));
  const std::size_t B = static_cast<std::size_t>(cfg.get_int("batch", 16));
  const std::size_t entries = static_cast<std::size_t>(cfg.get_int("entries", 160));
  const std::size_t reps = static_cast<std::size_t>(cfg.get_int("reps", 5));
  const bool strict = cfg.get_bool("strict", true);
  const int base_threads = num_threads();

  ResultTable table({"mode", "density", "threads", "prefetch", "reps", "wall_ms",
                     "ref_ms", "speedup", "stall_ms", "blocking_ms", "stall_frac",
                     "spike_checksum", "identical"});
  const auto add_row = [&](const std::string& mode, const std::string& density,
                           const std::string& threads, const std::string& prefetch,
                           double wall_ms, double ref_ms, double stall_ms,
                           double blocking_ms, std::uint64_t checksum, bool identical) {
    table.add_row();
    table.push(mode);
    table.push(density);
    table.push(threads);
    table.push(prefetch);
    table.push(static_cast<long long>(reps));
    table.push(format_double(wall_ms, 3));
    table.push(ref_ms >= 0 ? format_double(ref_ms, 3) : "-");
    table.push(ref_ms >= 0 ? format_double(ref_ms / wall_ms, 3) : "-");
    table.push(stall_ms >= 0 ? format_double(stall_ms, 3) : "-");
    table.push(blocking_ms >= 0 ? format_double(blocking_ms, 3) : "-");
    table.push(blocking_ms > 0 ? format_double(stall_ms / blocking_ms, 3) : "-");
    table.push(static_cast<long long>(checksum));
    table.push(static_cast<long long>(identical ? 1 : 0));
  };

  bool identity_fail = false;
  bool strict_fail = false;
  const snn::ThresholdPolicy policy = snn::ThresholdPolicy::fixed(1.0f);

  // -- forward: event-driven vs dense, input cube already in hand -----------
  // Same layer, same input cube, both kernels; the sparse path must reproduce
  // the dense output (and stats) bit for bit.  No speedup gate here: the
  // dense matmul zero-skips, so the in-hand delta is only the eliminated
  // count_nonzero/zero-check rescans.
  {
    Rng wrng(11);
    const snn::RecurrentLifLayer layer(C, n_out, snn::LifParams{},
                                       snn::SurrogateParams{}, wrng);
    const double densities[] = {0.02, 0.05, 0.10, 0.30};
    for (const double density : densities) {
      Tensor x(T, B, C);
      Rng xrng(static_cast<std::uint64_t>(density * 1000) + 101);
      for (auto& v : x.values()) v = xrng.bernoulli(density) ? 1.0f : 0.0f;

      snn::SpikeOpStats dense_stats, sparse_stats;
      Tensor dense_out, sparse_out;
      std::vector<double> dense_walls, sparse_walls;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        snn::set_sparse_forward(snn::SparseForward::kNever);
        dense_stats = {};
        Stopwatch dw;
        dense_out = layer.forward(x, snn::SpikeMode::kHard, policy, nullptr, &dense_stats);
        dense_walls.push_back(dw.elapsed_ms());

        snn::set_sparse_forward(snn::SparseForward::kAuto);
        sparse_stats = {};
        Stopwatch sw;
        sparse_out = layer.forward(x, snn::SpikeMode::kHard, policy, nullptr, &sparse_stats);
        sparse_walls.push_back(sw.elapsed_ms());
      }
      const bool identical =
          same_bits(dense_out, sparse_out) && same_stats(dense_stats, sparse_stats);
      if (!identical) {
        std::printf("BUG: sparse forward diverges from dense at density %.2f\n", density);
        identity_fail = true;
      }
      add_row("forward", format_double(density, 2), std::to_string(num_threads()), "-",
              median(sparse_walls), median(dense_walls), -1, -1, sparse_stats.spikes,
              identical);
    }
  }

  // -- forward_aer: from stored AER to layer output, both pipelines ---------
  // Replay storage holds AER, so this is the end-to-end hot path: the legacy
  // side pays aer_decode_into + fill_batch_column + dense forward, the event
  // side pays events_from_aer + forward_events (no dense input cube at all).
  // The >= 2x acceptance gate lives here.
  double best_aer_speedup = 0.0;
  {
    Rng wrng(12);
    const snn::RecurrentLifLayer layer(C, n_out, snn::LifParams{},
                                       snn::SurrogateParams{}, wrng);
    const double densities[] = {0.02, 0.05, 0.10};
    for (const double density : densities) {
      std::vector<compress::AerRaster> aer;
      for (std::size_t b = 0; b < B; ++b) {
        aer.push_back(compress::aer_encode(random_raster(
            T, C, density, 500 + b + static_cast<std::uint64_t>(density * 10000))));
      }
      snn::SpikeOpStats dense_stats, event_stats;
      Tensor dense_out, event_out;
      std::vector<double> dense_walls, event_walls;
      Tensor x;
      data::SpikeRaster scratch;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        snn::set_sparse_forward(snn::SparseForward::kNever);
        dense_stats = {};
        Stopwatch dw;
        data::ensure_batch_shape(x, T, B, C);
        for (std::size_t b = 0; b < B; ++b) {
          compress::aer_decode_into(aer[b], scratch);
          data::fill_batch_column(x, b, scratch);
        }
        dense_out = layer.forward(x, snn::SpikeMode::kHard, policy, nullptr, &dense_stats);
        dense_walls.push_back(dw.elapsed_ms());

        event_stats = {};
        Stopwatch ew;
        const compress::BatchEventList events = compress::events_from_aer(aer);
        event_out =
            layer.forward_events(events, snn::SpikeMode::kHard, policy, &event_stats);
        event_walls.push_back(ew.elapsed_ms());
      }
      const bool identical =
          same_bits(dense_out, event_out) && same_stats(dense_stats, event_stats);
      if (!identical) {
        std::printf("BUG: forward_events over AER diverges from dense at density %.2f\n",
                    density);
        identity_fail = true;
      }
      const double wall = median(event_walls);
      const double ref = median(dense_walls);
      if (density <= 0.10) best_aer_speedup = std::max(best_aer_speedup, ref / wall);
      add_row("forward_aer", format_double(density, 2), std::to_string(num_threads()),
              "-", wall, ref, -1, -1, event_stats.spikes, identical);
    }
    snn::set_sparse_forward(snn::SparseForward::kAuto);
    if (strict && best_aer_speedup < 2.0) {
      std::printf(
          "BUG: best from-AER sparse-forward speedup %.3f at density <= 0.10 below 2.0\n",
          best_aer_speedup);
      strict_fail = true;
    }
  }

  // -- train_threads: batch-parallel training, threads=4 vs threads=1 -------
  std::uint64_t thread_spikes = 0;
  {
    snn::NetworkConfig ncfg;
    ncfg.layer_sizes = {64, 48, 32};
    ncfg.num_classes = 5;
    ncfg.seed = 21;
    const snn::SnnNetwork base(ncfg);
    data::Dataset train;
    for (std::size_t i = 0; i < 96; ++i) {
      train.push_back({random_raster(20, 64, 0.1, 3000 + i),
                       static_cast<std::int32_t>(i % 5)});
    }
    const auto run_train = [&](int threads, std::vector<float>* weights,
                               std::uint64_t* spikes) {
      set_num_threads(threads);
      snn::SnnNetwork net = base.clone();
      snn::AdamOptimizer optimizer;
      snn::TrainOptions opts;
      opts.epochs = 2;
      opts.batch_size = 16;
      opts.lr = 1e-3f;
      opts.shuffle_seed = 13;
      Stopwatch watch;
      const auto history = snn::train_supervised(net, train, optimizer, opts);
      const double wall = watch.elapsed_ms();
      if (weights != nullptr) *weights = all_weights(net);
      if (spikes != nullptr) {
        *spikes = 0;
        for (const auto& rec : history) *spikes += rec.stats.spikes;
      }
      return wall;
    };
    std::vector<float> w1, w4;
    std::vector<double> walls1, walls4;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      walls1.push_back(run_train(1, &w1, nullptr));
      walls4.push_back(run_train(4, &w4, &thread_spikes));
    }
    set_num_threads(base_threads);
    const bool identical = same_weights(w1, w4);
    if (!identical) {
      std::printf("BUG: threads=4 training weights diverge from threads=1\n");
      identity_fail = true;
    }
    add_row("train_threads", "-", "4", "-", median(walls4), median(walls1), -1, -1,
            thread_spikes, identical);
  }

  // -- train_prefetch: background batch decode vs blocking assembly ---------
  // The replay source is a quantized (latent_bits=2) buffer streamed through
  // a ReplayStream, so every batch costs real decode work; prefetch=1 must
  // hide almost all of it behind training without changing a single weight
  // bit.
  {
    const std::size_t pT = 40, pC = 256;
    snn::NetworkConfig ncfg;
    ncfg.layer_sizes = {pC, 64, 32};
    ncfg.num_classes = 5;
    ncfg.seed = 33;
    const snn::SnnNetwork base(ncfg);
    core::LatentReplayBuffer buffer({.ratio = 2, .latent_bits = 2}, pT);
    for (std::size_t i = 0; i < entries; ++i) {
      buffer.add(random_raster(pT, pC, 0.1, 7000 + i), static_cast<std::int32_t>(i % 5));
    }
    const auto run_train = [&](std::size_t prefetch, std::vector<float>* weights,
                               double* stall_ms, std::uint64_t* spikes) {
      snn::SnnNetwork net = base.clone();
      snn::AdamOptimizer optimizer;
      snn::SpikeOpStats stream_stats;
      Rng rng(7);
      core::ReplayStream stream = buffer.stream(entries, rng, 16, &stream_stats);
      snn::SampleSource source;
      source.size = stream.size();
      source.fetch = [&stream](std::size_t i) -> const data::Sample& {
        return stream.fetch(i);
      };
      snn::TrainOptions opts;
      opts.epochs = 3;
      opts.batch_size = 16;
      opts.lr = 1e-3f;
      opts.shuffle_seed = 17;
      opts.prefetch = prefetch;
      Stopwatch watch;
      const auto history = snn::train_supervised(net, source, optimizer, opts);
      const double wall = watch.elapsed_ms();
      double stall = 0.0;
      std::uint64_t sp = 0;
      for (const auto& rec : history) {
        stall += rec.assembly_stall_seconds * 1e3;
        sp += rec.stats.spikes;
      }
      if (weights != nullptr) *weights = all_weights(net);
      if (stall_ms != nullptr) *stall_ms = stall;
      if (spikes != nullptr) *spikes = sp;
      return wall;
    };
    std::vector<float> w0, w1;
    std::uint64_t prefetch_spikes = 0;
    std::vector<double> walls0, walls1, stalls0, stalls1;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      double stall = 0.0;
      walls0.push_back(run_train(0, &w0, &stall, nullptr));
      stalls0.push_back(stall);
      walls1.push_back(run_train(1, &w1, &stall, &prefetch_spikes));
      stalls1.push_back(stall);
    }
    const bool identical = same_weights(w0, w1);
    if (!identical) {
      std::printf("BUG: prefetch=1 training weights diverge from prefetch=0\n");
      identity_fail = true;
    }
    const double stall = median(stalls1);
    const double blocking = median(stalls0);
    const double frac = blocking > 0 ? stall / blocking : 0.0;
    if (strict && frac >= 0.20) {
      std::printf("BUG: prefetch stall %.3f ms is %.3f of blocking cost %.3f ms (>= 0.20)\n",
                  stall, frac, blocking);
      strict_fail = true;
    }
    add_row("train_prefetch", "-", std::to_string(num_threads()), "1", median(walls1),
            median(walls0), stall, blocking, prefetch_spikes, identical);
  }

  bench::emit(table, "hot_path_latency",
              "SNN hot path: event-driven forward vs dense, batch-parallel training "
              "and prefetched batch assembly, with bit-identity self-checks");
  return (identity_fail || strict_fail) ? 1 : 0;
}
