// google-benchmark micro-benchmarks of the hot kernels: dense/sparse matmul,
// LIF layer step, spike codec, bit-packing, and the synthetic generator.
// These bound the substrate's throughput and document the event-driven
// sparsity speedup the cost models assume.
#include <benchmark/benchmark.h>

#include "compress/spike_codec.hpp"
#include "data/shd_synth.hpp"
#include "snn/layer.hpp"
#include "snn/readout.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace r4ncl;

Tensor random_dense(std::size_t r, std::size_t c, std::uint64_t seed) {
  Tensor t(r, c);
  Rng rng(seed);
  for (auto& v : t.values()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

Tensor random_spikes_2d(std::size_t r, std::size_t c, double p, std::uint64_t seed) {
  Tensor t(r, c);
  Rng rng(seed);
  for (auto& v : t.values()) v = rng.bernoulli(p) ? 1.0f : 0.0f;
  return t;
}

void BM_MatmulDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_dense(16, n, 1);
  const Tensor b = random_dense(n, n / 2, 2);
  Tensor c(16, n / 2);
  for (auto _ : state) {
    matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 16 * n * (n / 2));
}
BENCHMARK(BM_MatmulDense)->Arg(128)->Arg(256)->Arg(700);

void BM_MatmulSparseSpikes(benchmark::State& state) {
  // Input sparsity matching event data (~5% density): the zero-skip fast
  // path should show up as higher items/sec than the dense case.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_spikes_2d(16, n, 0.05, 3);
  const Tensor b = random_dense(n, n / 2, 4);
  Tensor c(16, n / 2);
  for (auto _ : state) {
    matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 16 * n * (n / 2));
}
BENCHMARK(BM_MatmulSparseSpikes)->Arg(128)->Arg(256)->Arg(700);

void BM_LifLayerForward(benchmark::State& state) {
  const auto T = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  snn::RecurrentLifLayer layer(700, 200, snn::LifParams{}, snn::SurrogateParams{}, rng);
  Tensor x(T, 8, 700);
  Rng data(6);
  for (auto& v : x.values()) v = data.bernoulli(0.05) ? 1.0f : 0.0f;
  const auto policy = snn::ThresholdPolicy::fixed(1.0f);
  for (auto _ : state) {
    Tensor out = layer.forward(x, snn::SpikeMode::kHard, policy, nullptr, nullptr);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * T * 8);
}
BENCHMARK(BM_LifLayerForward)->Arg(20)->Arg(40)->Arg(100);

void BM_LifLayerBackward(benchmark::State& state) {
  const auto T = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  snn::RecurrentLifLayer layer(200, 100, snn::LifParams{}, snn::SurrogateParams{}, rng);
  Tensor x(T, 8, 200);
  Rng data(8);
  for (auto& v : x.values()) v = data.bernoulli(0.08) ? 1.0f : 0.0f;
  const auto policy = snn::ThresholdPolicy::fixed(1.0f);
  snn::LayerCache cache;
  (void)layer.forward(x, snn::SpikeMode::kHard, policy, &cache, nullptr);
  Tensor d_out(T, 8, 100);
  d_out.fill(0.01f);
  Tensor d_in(T, 8, 200);
  for (auto _ : state) {
    layer.zero_grad();
    layer.backward(x, cache, d_out, &d_in, nullptr);
    benchmark::DoNotOptimize(d_in.raw());
  }
  state.SetItemsProcessed(state.iterations() * T * 8);
}
BENCHMARK(BM_LifLayerBackward)->Arg(40)->Arg(100);

void BM_AdaptiveThresholdOverhead(benchmark::State& state) {
  // Same layer pass with the Alg. 1 controller active: its cost must be
  // negligible next to the matmuls.
  Rng rng(9);
  snn::RecurrentLifLayer layer(700, 200, snn::LifParams{}, snn::SurrogateParams{}, rng);
  Tensor x(40, 8, 700);
  Rng data(10);
  for (auto& v : x.values()) v = data.bernoulli(0.05) ? 1.0f : 0.0f;
  const auto policy = snn::ThresholdPolicy::adaptive(40);
  for (auto _ : state) {
    Tensor out = layer.forward(x, snn::SpikeMode::kHard, policy, nullptr, nullptr);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * 40 * 8);
}
BENCHMARK(BM_AdaptiveThresholdOverhead);

void BM_CodecCompress(benchmark::State& state) {
  Rng rng(11);
  data::SpikeRaster r(100, 200);
  for (auto& b : r.bits) b = rng.bernoulli(0.1) ? 1 : 0;
  const compress::CodecConfig cfg{.ratio = 2};
  for (auto _ : state) {
    auto c = compress::compress(r, cfg);
    benchmark::DoNotOptimize(c.bits.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(r.bits.size()));
}
BENCHMARK(BM_CodecCompress);

void BM_CodecDecompress(benchmark::State& state) {
  Rng rng(12);
  data::SpikeRaster r(100, 200);
  for (auto& b : r.bits) b = rng.bernoulli(0.1) ? 1 : 0;
  const compress::CodecConfig cfg{.ratio = 2};
  const auto compressed = compress::compress(r, cfg);
  for (auto _ : state) {
    auto d = compress::decompress(compressed, 100, cfg);
    benchmark::DoNotOptimize(d.bits.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(r.bits.size()));
}
BENCHMARK(BM_CodecDecompress);

void BM_BitpackRoundTrip(benchmark::State& state) {
  Rng rng(13);
  data::SpikeRaster r(40, 200);
  for (auto& b : r.bits) b = rng.bernoulli(0.1) ? 1 : 0;
  for (auto _ : state) {
    auto packed = compress::pack(r);
    auto back = compress::unpack(packed);
    benchmark::DoNotOptimize(back.bits.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(r.bits.size()));
}
BENCHMARK(BM_BitpackRoundTrip);

void BM_ShdSampleGeneration(benchmark::State& state) {
  const data::SyntheticShdGenerator gen(data::ShdSynthParams{});
  Rng rng(14);
  for (auto _ : state) {
    auto s = gen.make_sample(3, rng);
    benchmark::DoNotOptimize(s.raster.bits.data());
  }
}
BENCHMARK(BM_ShdSampleGeneration);

}  // namespace

int main(int argc, char** argv) {
  r4ncl::init_threads_from_env();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
