// Streaming replay assembly: wall-clock and peak memory of the per-epoch
// replay draw, full materialization (LatentReplayBuffer::sample) vs the
// ReplayStream minibatch cursor, across codec × latent_bits × minibatch.
//
// Latent replay's real-time cost is not just storage: assembling the replay
// set each epoch decompresses every drawn entry, and sample() holds all k
// decoded (T × C) rasters at once before training sees the first batch
// (Pellegrini et al.; Ravaglia et al.).  The streaming path decodes at most
// one minibatch at a time into a scratch pool — this bench records what that
// buys (peak replay-assembly bytes) and what it costs (wall-clock), plus raw
// unpack-kernel rates so the byte-parallel sub-byte decoders can be compared
// against the legacy binary path directly.
//
// Row modes:
//   sample  — full materialization via buffer.sample(k, rng): peak bytes is
//             the whole decoded draw.
//   stream  — ReplayStream cursor at the given minibatch: identical entry
//             set (same Rng), peak bytes is the scratch pool high-water.
//             The bench asserts the spike checksum matches `sample` per
//             codec, so the rows are at equal replayed content (and, by the
//             engine equivalence tests, equal accuracy).
//   kernel  — raw decode rate of one large packed raster (ns/element):
//             unpack() for the binary layout, unpack_elements() for 2/4/8.
//
// This bench is synthetic (no SNN training): it isolates replay assembly,
// so it runs in seconds and is deterministic per seed.  Knobs (key=value or
// R4NCL_<KEY>): entries=192 channels=200 timesteps=40 draws=96 reps=5
// threads=N verbose=1.  Writes replay_stream_latency.csv/.json (checked in
// at the repo root as BENCH_replay_stream.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/latent_buffer.hpp"
#include "core/replay_stream.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

using namespace r4ncl;

namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double density,
                                std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(density) ? 1 : 0;
  return r;
}

struct CodecCase {
  std::string name;
  compress::CodecConfig codec;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// The pre-kernel scalar binary decode (one shift/mask per element) — the
/// "legacy binary unpack" yardstick the byte-parallel sub-byte kernels are
/// measured against.
void scalar_unpack(const compress::PackedRaster& packed, data::SpikeRaster& out) {
  const std::size_t row_bytes = packed.row_bytes();
  out.timesteps = packed.timesteps;
  out.channels = packed.channels;
  out.bits.resize(static_cast<std::size_t>(packed.timesteps) * packed.channels);
  for (std::size_t t = 0; t < packed.timesteps; ++t) {
    const std::uint8_t* row = packed.payload.data() + t * row_bytes;
    std::uint8_t* dst = out.bits.data() + t * packed.channels;
    for (std::size_t c = 0; c < packed.channels; ++c) {
      dst[c] = (row[c >> 3] >> (c & 7u)) & 1u;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg, {"entries", "channels", "timesteps", "draws", "reps"});
  const core::ScopedMetrics metrics(cfg);
  init_log_level_from_env();
  init_threads_from_env();
  const std::size_t entries = static_cast<std::size_t>(cfg.get_int("entries", 192));
  const std::size_t C = static_cast<std::size_t>(cfg.get_int("channels", 200));
  const std::size_t T = static_cast<std::size_t>(cfg.get_int("timesteps", 40));
  const std::size_t draws = static_cast<std::size_t>(cfg.get_int("draws", 96));
  const std::size_t reps = static_cast<std::size_t>(cfg.get_int("reps", 5));
  const std::size_t minibatches[] = {8, 32};

  const CodecCase cases[] = {
      {"raw", {.ratio = 1, .latent_bits = 0}},
      {"binary-r2", {.ratio = 2, .latent_bits = 0}},
      {"quant8-r2", {.ratio = 2, .latent_bits = 8}},
      {"quant4-r2", {.ratio = 2, .latent_bits = 4}},
      {"quant2-r2", {.ratio = 2, .latent_bits = 2}},
  };

  ResultTable table({"mode", "codec", "latent_bits", "minibatch", "draws", "wall_ms",
                     "ns_per_elem", "peak_assembly_bytes", "decompress_mbits",
                     "spike_checksum"});
  const auto add_row = [&](const std::string& mode, const CodecCase& cc,
                           const std::string& minibatch, double wall_ms, double ns_per_elem,
                           std::size_t peak_bytes, double mbits, std::uint64_t checksum) {
    table.add_row();
    table.push(mode);
    table.push(cc.name);
    table.push(static_cast<long long>(cc.codec.latent_bits));
    table.push(minibatch);
    table.push(static_cast<long long>(draws));
    table.push(wall_ms >= 0 ? format_double(wall_ms, 3) : "-");
    table.push(ns_per_elem >= 0 ? format_double(ns_per_elem, 3) : "-");
    table.push(static_cast<long long>(peak_bytes));
    table.push(format_double(mbits, 2));
    table.push(static_cast<long long>(checksum));
  };

  bool checksum_mismatch = false;
  for (const CodecCase& cc : cases) {
    core::LatentReplayBuffer buffer(cc.codec, T);
    for (std::size_t i = 0; i < entries; ++i) {
      buffer.add(random_raster(T, C, 0.15, 1000 + i), static_cast<std::int32_t>(i % 10));
    }

    // -- sample(): the full-materialization reference ----------------------
    // sample() caps the draw at the resident entry count, so that is also
    // the number of rasters the materialized path holds at peak.
    const std::size_t materialized = std::min(draws, buffer.size());
    const std::size_t full_bytes = materialized * T * C;
    std::uint64_t sample_checksum = 0;
    snn::SpikeOpStats sample_stats;
    std::vector<double> sample_walls;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng(7);
      sample_stats = {};
      sample_checksum = 0;
      Stopwatch watch;
      const data::Dataset ds = buffer.sample(draws, rng, &sample_stats);
      for (const auto& s : ds) sample_checksum += s.raster.spike_count();
      sample_walls.push_back(watch.elapsed_ms());
    }
    add_row("sample", cc, "-", median(sample_walls), -1, full_bytes,
            static_cast<double>(sample_stats.decompress_bits) / 1e6, sample_checksum);

    // -- ReplayStream at each minibatch ------------------------------------
    for (const std::size_t m : minibatches) {
      // A minibatch >= the draw decodes everything at once — that is the
      // `sample` row above, so it adds no information and the peak-bytes
      // invariant below (streamed < full) does not apply.
      if (m >= materialized) continue;
      std::uint64_t stream_checksum = 0;
      std::size_t peak = 0;
      snn::SpikeOpStats stream_stats;
      std::vector<double> stream_walls;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        Rng rng(7);
        stream_stats = {};
        stream_checksum = 0;
        Stopwatch watch;
        core::ReplayStream stream = buffer.stream(draws, rng, m, &stream_stats);
        while (!stream.done()) {
          for (const data::Sample& s : stream.next()) {
            stream_checksum += s.raster.spike_count();
          }
        }
        stream_walls.push_back(watch.elapsed_ms());
        peak = stream.peak_assembly_bytes();
      }
      add_row("stream", cc, std::to_string(m), median(stream_walls), -1, peak,
              static_cast<double>(stream_stats.decompress_bits) / 1e6, stream_checksum);
      if (stream_checksum != sample_checksum) {
        std::printf("BUG: stream checksum %llu != sample checksum %llu (%s, m=%zu)\n",
                    static_cast<unsigned long long>(stream_checksum),
                    static_cast<unsigned long long>(sample_checksum), cc.name.c_str(), m);
        checksum_mismatch = true;
      }
      if (peak >= full_bytes) {
        std::printf("BUG: stream peak %zu B not below full materialization %zu B\n", peak,
                    full_bytes);
        checksum_mismatch = true;
      }
    }
  }

  // -- raw unpack kernels: ns/element of one large packed raster -----------
  // The binary row is the legacy layout every sub-byte kernel competes with
  // (acceptance: byte-parallel 2-bit decode must not be slower).
  {
    const std::size_t kT = 256;
    const std::size_t kC = 704;
    const std::size_t elements = kT * kC;
    const std::size_t kernel_reps = std::max<std::size_t>(reps * 40, 100);
    const data::SpikeRaster big = random_raster(kT, kC, 0.2, 99);
    // Binary layout via pack(): the legacy scalar decode first (yardstick),
    // then the byte-parallel kernel.
    {
      const compress::PackedRaster packed = compress::pack(big);
      data::SpikeRaster out;
      std::vector<double> scalar_walls;
      for (std::size_t rep = 0; rep < kernel_reps; ++rep) {
        Stopwatch watch;
        scalar_unpack(packed, out);
        scalar_walls.push_back(watch.elapsed_ms());
      }
      const CodecCase scalar_case{"binary-scalar", {.ratio = 1, .latent_bits = 0}};
      add_row("kernel", scalar_case, "-", -1,
              median(scalar_walls) * 1e6 / static_cast<double>(elements), elements, 0,
              out.spike_count());
      std::vector<double> walls;
      for (std::size_t rep = 0; rep < kernel_reps; ++rep) {
        Stopwatch watch;
        compress::unpack_into(packed, out);
        walls.push_back(watch.elapsed_ms());
      }
      const CodecCase binary{"binary", {.ratio = 1, .latent_bits = 0}};
      add_row("kernel", binary, "-", -1,
              median(walls) * 1e6 / static_cast<double>(elements), elements, 0,
              out.spike_count());
    }
    // Sub-byte element layouts via pack_elements/unpack_elements.
    for (const unsigned bits : {2u, 4u, 8u}) {
      std::vector<std::uint8_t> values(elements);
      Rng rng(5);
      for (auto& v : values) {
        v = static_cast<std::uint8_t>(rng.uniform_index(1u << bits));
      }
      const compress::PackedRaster packed = compress::pack_elements(values, kT, kC, bits);
      std::vector<std::uint8_t> out;
      std::vector<double> walls;
      std::uint64_t checksum = 0;
      for (std::size_t rep = 0; rep < kernel_reps; ++rep) {
        Stopwatch watch;
        compress::unpack_elements_into(packed, out);
        walls.push_back(watch.elapsed_ms());
      }
      for (const std::uint8_t v : out) checksum += v;
      CodecCase kernel_case{"elements", {.ratio = 1}};
      kernel_case.codec.latent_bits = static_cast<std::uint8_t>(bits);
      add_row("kernel", kernel_case, "-", -1,
              median(walls) * 1e6 / static_cast<double>(elements), elements, 0, checksum);
    }
  }

  bench::emit(table, "replay_stream_latency",
              "Streaming replay assembly: sample() vs ReplayStream wall-clock and peak "
              "bytes (codec x latent_bits x minibatch) plus raw unpack-kernel rates");
  return checksum_mismatch ? 1 : 0;
}
