// Extension experiment: a *stream* of new classes (the deployment setting
// the paper's Fig. 1(b) motivates, beyond its single-new-class evaluation).
//
// The network pre-trains on 16 classes; classes 16..19 then arrive one at a
// time.  After each task the engine records compressed latents of the new
// class into the replay buffer (on-device self-recording).  Reported per
// task: base-class accuracy, mean accuracy over learned stream classes,
// buffer growth, and cost — for SpikingLR vs Replay4NCL.
#include "common.hpp"
#include "core/sequential.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg, {"tasks"});
  const core::ScopedMetrics metrics(cfg);
  init_log_level_from_env();
  init_threads_from_env();
  const std::size_t num_tasks = static_cast<std::size_t>(cfg.get_int("tasks", 4));
  const std::size_t epochs = static_cast<std::size_t>(cfg.get_int("epochs", 20));

  // Build the stream split (the single-task pretrain cache does not apply:
  // the base here is 20 − num_tasks classes).
  core::PretrainConfig pc = core::pretrain_config_from(cfg);
  const data::SyntheticShdGenerator generator(pc.data_params);
  const data::SequentialTasks tasks =
      data::build_sequential_tasks(generator, pc.split, num_tasks);

  R4NCL_INFO("pre-training on " << tasks.base_classes.size() << " base classes...");
  snn::SnnNetwork pretrained{pc.network};
  {
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = pc.epochs;
    opts.batch_size = pc.batch_size;
    opts.lr = pc.lr;
    (void)snn::train_supervised(pretrained, tasks.pretrain_train, opt, opts);
  }

  ResultTable table({"method", "task", "class", "acc_base", "acc_stream", "acc_current",
                     "latent_bytes", "latency_ms"});
  struct MethodEntry {
    const char* name;
    core::NclMethodConfig method;
  };
  const MethodEntry methods[] = {
      {"SpikingLR", core::bench_spiking_lr()},
      {"Replay4NCL", core::bench_replay4ncl()},
  };
  for (const MethodEntry& m : methods) {
    snn::SnnNetwork net = pretrained.clone();
    core::SequentialRunConfig run;
    run.method = m.method;
    run.insertion_layer = 2;
    run.epochs_per_task = epochs;
    run.replay_per_new_class = pc.split.replay_per_class;
    const core::SequentialRunResult res = core::run_sequential(net, tasks, run);
    for (const auto& row : res.rows) {
      table.add_row();
      table.push(m.name);
      table.push(static_cast<long long>(row.task_index));
      table.push(static_cast<long long>(row.class_id));
      table.push(bench::pct(row.acc_base));
      table.push(bench::pct(row.acc_learned));
      table.push(bench::pct(row.acc_current));
      table.push(static_cast<long long>(row.latent_memory_bytes));
      table.push(format_double(row.latency_ms, 1));
    }
  }
  bench::emit(table, "ext_sequential_tasks",
              "Extension: sequential class stream (LR layer 2) — base retention, "
              "stream retention, buffer growth");
  return 0;
}
